(* Elaboration: Verilog subset AST -> netlist.

   [case] statements lower to eq-controlled muxtrees in one of three styles:
   - [`Chain]    a priority chain of 2:1 muxes (paper Fig. 5)
   - [`Balanced] a full binary tree with or-combined selects (paper Fig. 6)
   - [`Pmux]     a single parallel-mux cell

   Every declared name is backed by a real wire; assignments drive the wire
   through a transparent or-with-zero buffer (folds away in the AIG and is
   removed by the opt_expr pass), which keeps forward references simple. *)

open Netlist

exception Elab_error of string * Loc.span option

type case_style = [ `Chain | `Balanced | `Pmux ]

type ctx = {
  circuit : Circuit.t;
  names : (string, Circuit.wire) Hashtbl.t;
  style : case_style;
  mutable ff_mode : bool;
      (* inside always @(posedge): expression reads see the pre-state
         registers, not earlier non-blocking assignments *)
  mutable cur_loc : Loc.span option;
      (* span of the statement or item being elaborated, for errors *)
}

let fail ctx fmt =
  Fmt.kstr (fun m -> raise (Elab_error (m, ctx.cur_loc))) fmt

let lookup_wire ctx name =
  match Hashtbl.find_opt ctx.names name with
  | Some w -> w
  | None -> fail ctx "undeclared identifier %s" name

(* --- constants --- *)

let sig_of_constant (c : Ast.constant) : Bits.sigspec =
  Array.of_list
    (List.map
       (function Ast.B0 -> Bits.C0 | Ast.B1 -> Bits.C1 | Ast.Bz -> Bits.Cx)
       c.Ast.cbits)

(* --- expression elaboration --- *)

module Env = Map.Make (String)

type env = Bits.sigspec Env.t

let extend_to w s = Bits.extend s ~width:w

(* the value a name holds at this point of the surrounding block: in
   blocking (combinational) context, earlier assignments are visible; in
   non-blocking (posedge) context, reads see the pre-state registers *)
let env_value ctx (env : env) name : Bits.sigspec =
  match Env.find_opt name env with
  | Some s -> s
  | None -> Circuit.sig_of_wire (lookup_wire ctx name)

let read_value ctx (env : env) name : Bits.sigspec =
  if ctx.ff_mode then Circuit.sig_of_wire (lookup_wire ctx name)
  else env_value ctx env name

let bool_of ctx (s : Bits.sigspec) : Bits.bit =
  if Bits.width s = 1 then s.(0)
  else (Circuit.mk_unary ctx.circuit Cell.Reduce_bool s).(0)

let rec elab_expr ctx (env : env) (e : Ast.expr) : Bits.sigspec =
  match e with
  | Ast.E_ident name -> read_value ctx env name
  | Ast.E_const c -> sig_of_constant c
  | Ast.E_select (name, i) ->
    let v = read_value ctx env name in
    if i < 0 || i >= Bits.width v then
      fail ctx "index %d out of range for %s" i name;
    [| v.(i) |]
  | Ast.E_range (name, msb, lsb) ->
    let v = read_value ctx env name in
    if lsb < 0 || msb >= Bits.width v || msb < lsb then
      fail ctx "range [%d:%d] out of range for %s" msb lsb name;
    Bits.slice v ~off:lsb ~len:(msb - lsb + 1)
  | Ast.E_concat parts ->
    (* Verilog writes MSB part first; sigspecs are LSB first *)
    Bits.concat (List.rev_map (elab_expr ctx env) parts)
  | Ast.E_unary (op, a) -> (
    let va = elab_expr ctx env a in
    match op with
    | Ast.U_not -> Circuit.mk_unary ctx.circuit Cell.Not va
    | Ast.U_lnot -> Circuit.mk_unary ctx.circuit Cell.Logic_not va
    | Ast.U_rand -> Circuit.mk_unary ctx.circuit Cell.Reduce_and va
    | Ast.U_ror -> Circuit.mk_unary ctx.circuit Cell.Reduce_or va
    | Ast.U_rxor -> Circuit.mk_unary ctx.circuit Cell.Reduce_xor va)
  | Ast.E_binary (op, a, b) -> (
    let va = elab_expr ctx env a and vb = elab_expr ctx env b in
    let w = max (Bits.width va) (Bits.width vb) in
    let va' = extend_to w va and vb' = extend_to w vb in
    let bin o = Circuit.mk_binary ctx.circuit o va' vb' in
    match op with
    | Ast.B_and -> bin Cell.And
    | Ast.B_or -> bin Cell.Or
    | Ast.B_xor -> bin Cell.Xor
    | Ast.B_xnor -> bin Cell.Xnor
    | Ast.B_eq -> bin Cell.Eq
    | Ast.B_ne -> bin Cell.Ne
    | Ast.B_land -> Circuit.mk_binary ctx.circuit Cell.Logic_and va vb
    | Ast.B_lor -> Circuit.mk_binary ctx.circuit Cell.Logic_or va vb
    | Ast.B_add -> bin Cell.Add
    | Ast.B_sub -> bin Cell.Sub)
  | Ast.E_ternary (c, t, e) ->
    let s = bool_of ctx (elab_expr ctx env c) in
    let vt = elab_expr ctx env t and ve = elab_expr ctx env e in
    let w = max (Bits.width vt) (Bits.width ve) in
    Circuit.mk_mux ctx.circuit ~a:(extend_to w ve) ~b:(extend_to w vt) ~s

(* Build the select bit for one case pattern: an $eq over the non-wildcard
   bits (a $logic_not when the compared constant is all zeros, which is the
   special eq the paper mentions). *)
let pattern_select ctx ~(subject : Bits.sigspec) (pat : Ast.constant)
    ~match_all_wildcard : Bits.bit =
  let w = Bits.width subject in
  let bits = Array.of_list pat.Ast.cbits in
  let pairs = ref [] in
  Array.iteri
    (fun i pb ->
      if i < w then
        match pb with
        | Ast.B0 -> pairs := (subject.(i), Bits.C0) :: !pairs
        | Ast.B1 -> pairs := (subject.(i), Bits.C1) :: !pairs
        | Ast.Bz -> ())
    bits;
  (* pattern bits beyond the subject width must be zero to ever match *)
  if pat.Ast.cwidth > w
     && List.exists (( = ) Ast.B1)
          (List.filteri (fun i _ -> i >= w) pat.Ast.cbits)
  then Bits.C0
  else
    match !pairs with
    | [] -> match_all_wildcard
    | pairs ->
      let a = Array.of_list (List.map fst pairs) in
      let b = Array.of_list (List.map snd pairs) in
      if Array.for_all (fun bit -> bit = Bits.C0) b then
        (Circuit.mk_unary ctx.circuit Cell.Logic_not a).(0)
      else (Circuit.mk_binary ctx.circuit Cell.Eq a b).(0)

(* --- statement elaboration (symbolic execution) --- *)

(* Merge a list of (select, env) branches over a base env: for every name
   assigned in any branch, build the mux structure per the case style.
   [branches] are in priority order (first wins). *)
let merge_chain ctx base branches =
  let assigned =
    List.fold_left
      (fun acc (_, e) -> Env.fold (fun k _ acc -> k :: acc) e acc)
      [] branches
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc name ->
      let base_v = env_value ctx base name in
      let w = Bits.width base_v in
      let folded =
        List.fold_right
          (fun (sel, e) acc_v ->
            match Env.find_opt name e with
            | None -> acc_v
            | Some v ->
              Circuit.mk_mux ctx.circuit ~a:acc_v ~b:(extend_to w v) ~s:sel)
          branches base_v
      in
      Env.add name folded acc)
    base assigned

let merge_balanced ctx base branches =
  let assigned =
    List.fold_left
      (fun acc (_, e) -> Env.fold (fun k _ acc -> k :: acc) e acc)
      [] branches
    |> List.sort_uniq compare
  in
  let or_sels sels =
    match sels with
    | [] -> Bits.C0
    | [ s ] -> s
    | s :: rest ->
      List.fold_left (fun acc x -> Circuit.mk_or ctx.circuit acc x) s rest
  in
  List.fold_left
    (fun acc name ->
      let base_v = env_value ctx base name in
      let w = Bits.width base_v in
      let items =
        List.filter_map
          (fun (sel, e) ->
            Env.find_opt name e |> Option.map (fun v -> sel, extend_to w v))
          branches
      in
      (* [tree items] assumes some select holds; [build items] falls back to
         the base value *)
      let rec tree = function
        | [] -> base_v
        | [ (_, v) ] -> v
        | items ->
          let n = List.length items in
          let left = List.filteri (fun i _ -> i < n / 2) items in
          let right = List.filteri (fun i _ -> i >= n / 2) items in
          let sel_left = or_sels (List.map fst left) in
          Circuit.mk_mux ctx.circuit ~a:(tree right) ~b:(tree left)
            ~s:sel_left
      and build = function
        | [] -> base_v
        | [ (sel, v) ] -> Circuit.mk_mux ctx.circuit ~a:base_v ~b:v ~s:sel
        | items ->
          let n = List.length items in
          let left = List.filteri (fun i _ -> i < n / 2) items in
          let right = List.filteri (fun i _ -> i >= n / 2) items in
          let sel_left = or_sels (List.map fst left) in
          Circuit.mk_mux ctx.circuit ~a:(build right) ~b:(tree left)
            ~s:sel_left
      in
      Env.add name (build items) acc)
    base assigned

let merge_pmux ctx base branches =
  let assigned =
    List.fold_left
      (fun acc (_, e) -> Env.fold (fun k _ acc -> k :: acc) e acc)
      [] branches
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc name ->
      let base_v = env_value ctx base name in
      let w = Bits.width base_v in
      let items =
        List.filter_map
          (fun (sel, e) ->
            Env.find_opt name e |> Option.map (fun v -> sel, extend_to w v))
          branches
      in
      match items with
      | [] -> acc
      | [ (sel, v) ] ->
        Env.add name (Circuit.mk_mux ctx.circuit ~a:base_v ~b:v ~s:sel) acc
      | items ->
        let s = Array.of_list (List.map fst items) in
        let b = Bits.concat (List.map snd items) in
        Env.add name (Circuit.mk_pmux ctx.circuit ~a:base_v ~b ~s) acc)
    base assigned

let merge ctx base branches =
  match ctx.style with
  | `Chain -> merge_chain ctx base branches
  | `Balanced -> merge_balanced ctx base branches
  | `Pmux -> merge_pmux ctx base branches

let rec elab_stmt ctx (env : env) (s : Ast.stmt) : env =
  if not (Loc.is_dummy s.Ast.sloc) then ctx.cur_loc <- Some s.Ast.sloc;
  match s.Ast.sdesc with
  | Ast.S_assign (name, e) ->
    let w = lookup_wire ctx name in
    let v = extend_to w.Circuit.width (elab_expr ctx env e) in
    Env.add name v env
  | Ast.S_if (cond, then_, else_) ->
    let sel = bool_of ctx (elab_expr ctx env cond) in
    let env_t = elab_stmts ctx env then_ in
    let env_e = elab_stmts ctx env else_ in
    (* assignments already in env are the fallback; express both branches as
       deltas over env *)
    let delta base_env new_env =
      Env.filter
        (fun k v ->
          match Env.find_opt k base_env with
          | Some old -> not (Bits.equal old v)
          | None -> true)
        new_env
    in
    let dt = delta env env_t and de = delta env env_e in
    let names =
      List.sort_uniq compare
        (List.map fst (Env.bindings dt) @ List.map fst (Env.bindings de))
    in
    List.fold_left
      (fun acc name ->
        let vt = env_value ctx env_t name in
        let ve = env_value ctx env_e name in
        if Bits.equal vt ve then Env.add name vt acc
        else begin
          let w = max (Bits.width vt) (Bits.width ve) in
          Env.add name
            (Circuit.mk_mux ctx.circuit ~a:(extend_to w ve)
               ~b:(extend_to w vt) ~s:sel)
            acc
        end)
      env names
  | Ast.S_case { Ast.is_casez; subject; items; default } ->
    let subj = elab_expr ctx env subject in
    let match_all_wildcard = Bits.C1 in
    let branches =
      List.map
        (fun { Ast.pats; body; iloc } ->
          if not (Loc.is_dummy iloc) then ctx.cur_loc <- Some iloc;
          if (not is_casez) && List.exists Ast.const_has_wildcard pats then
            fail ctx "wildcard pattern in plain case (use casez)";
          let sels =
            List.map
              (fun p -> pattern_select ctx ~subject:subj p ~match_all_wildcard)
              pats
          in
          let sel =
            match sels with
            | [ s ] -> s
            | s :: rest ->
              List.fold_left (fun acc x -> Circuit.mk_or ctx.circuit acc x) s rest
            | [] -> Bits.C0
          in
          let env' = elab_stmts ctx env body in
          sel, env')
        items
    in
    let base =
      match default with
      | Some body -> elab_stmts ctx env body
      | None -> env
    in
    (* branch envs are deltas over [env]; keep only their assignments *)
    let branches =
      List.map
        (fun (sel, e) ->
          let d =
            Env.filter
              (fun k v ->
                match Env.find_opt k env with
                | Some old -> not (Bits.equal old v)
                | None -> true)
              e
          in
          sel, d)
        branches
    in
    merge ctx base branches

and elab_stmts ctx env stmts = List.fold_left (elab_stmt ctx) env stmts

(* --- module elaboration --- *)

let drive_wire ctx (w : Circuit.wire) (v : Bits.sigspec) =
  let v = extend_to w.Circuit.width v in
  ignore
    (Circuit.add_cell ctx.circuit
       (Cell.Binary
          {
            op = Cell.Or;
            a = v;
            b = Bits.all_zero ~width:w.Circuit.width;
            y = Circuit.sig_of_wire w;
          }))

let elaborate ?(style : case_style = `Chain) (m : Ast.module_) : Circuit.t =
  let circuit = Circuit.create m.Ast.mname in
  let ctx =
    {
      circuit;
      names = Hashtbl.create 16;
      style;
      ff_mode = false;
      cur_loc = None;
    }
  in
  let set_loc sp = ctx.cur_loc <- (if Loc.is_dummy sp then None else Some sp) in
  (* declarations first *)
  List.iter
    (fun item ->
      match item with
      | Ast.I_decl d ->
        set_loc d.Ast.dloc;
        if Hashtbl.mem ctx.names d.Ast.dname then
          fail ctx "duplicate declaration of %s" d.Ast.dname
        else begin
          let width = Ast.decl_width d in
          let w =
            match d.Ast.kind with
            | Ast.D_input -> Circuit.add_input circuit d.Ast.dname ~width
            | Ast.D_output | Ast.D_output_reg ->
              Circuit.add_output circuit d.Ast.dname ~width
            | Ast.D_wire | Ast.D_reg ->
              Circuit.add_wire circuit ~name:d.Ast.dname ~width ()
          in
          Hashtbl.replace ctx.names d.Ast.dname w
        end
      | Ast.I_assign _ | Ast.I_always _ | Ast.I_always_ff _ -> ())
    m.Ast.items;
  (* then behaviour *)
  List.iter
    (fun item ->
      match item with
      | Ast.I_decl _ -> ()
      | Ast.I_assign { lhs; rhs; aloc } ->
        set_loc aloc;
        let w = lookup_wire ctx lhs in
        drive_wire ctx w (elab_expr ctx Env.empty rhs)
      | Ast.I_always { body; aloc } ->
        set_loc aloc;
        let env = elab_stmts ctx Env.empty body in
        Env.iter
          (fun name v -> drive_wire ctx (lookup_wire ctx name) v)
          env
      | Ast.I_always_ff { clock = _; body; aloc } ->
        (* single implicit clock domain; reads see pre-state registers *)
        set_loc aloc;
        ctx.ff_mode <- true;
        let env = elab_stmts ctx Env.empty body in
        ctx.ff_mode <- false;
        Env.iter
          (fun name v ->
            let w = lookup_wire ctx name in
            ignore
              (Circuit.add_cell ctx.circuit
                 (Cell.Dff
                    {
                      d = extend_to w.Circuit.width v;
                      q = Circuit.sig_of_wire w;
                    })))
          env)
    m.Ast.items;
  circuit

let elaborate_string ?style src = elaborate ?style (Parser.parse_string src)
