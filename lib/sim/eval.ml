(* Three-valued evaluation of circuits and sub-DAGs.

   The environment maps wire bits to values.  Constant bits evaluate to
   themselves; any bit absent from the environment reads as X, so partial
   evaluation over a sub-graph is safe by construction. *)

open Netlist

type env = Value.t Bits.Bit_tbl.t

let create_env () : env = Bits.Bit_tbl.create 64

let read (env : env) (b : Bits.bit) : Value.t =
  match b with
  | Bits.C0 -> Value.V0
  | Bits.C1 -> Value.V1
  | Bits.Cx -> Value.Vx
  | Bits.Of_wire _ -> (
    match Bits.Bit_tbl.find_opt env b with
    | Some v -> v
    | None -> Value.Vx)

let write (env : env) (b : Bits.bit) (v : Value.t) =
  match b with
  | Bits.Of_wire _ -> Bits.Bit_tbl.replace env b v
  | Bits.C0 | Bits.C1 | Bits.Cx -> ()

let read_vec env (s : Bits.sigspec) = Array.map (read env) s

(* Reduce a value vector with [f] starting from [init]. *)
let reduce f init vs = Array.fold_left f init vs

let vec_to_bool_opt vs =
  Array.fold_left
    (fun acc v ->
      match acc, Value.to_bool v with
      | Some l, Some b -> Some (b :: l)
      | _, None | None, _ -> None)
    (Some []) vs
  |> Option.map List.rev

(* Evaluate one cell, writing its outputs into [env].  Dff cells are
   ignored: their q bits are state, set externally by the caller. *)
let eval_cell (env : env) (cell : Cell.t) =
  let open Value in
  let rv = read_vec env in
  let set_vec y vs = Array.iteri (fun i v -> write env y.(i) v) vs in
  let bool_vec vs =
    (* collapse a vector to its "is nonzero" logic value *)
    reduce v_or V0 vs
  in
  match cell with
  | Cell.Unary { op = Not; a; y } -> set_vec y (Array.map v_not (rv a))
  | Cell.Unary { op = Logic_not; a; y } ->
    write env y.(0) (v_not (bool_vec (rv a)))
  | Cell.Unary { op = Reduce_and; a; y } ->
    write env y.(0) (reduce v_and V1 (rv a))
  | Cell.Unary { op = Reduce_or; a; y } | Cell.Unary { op = Reduce_bool; a; y }
    -> write env y.(0) (bool_vec (rv a))
  | Cell.Unary { op = Reduce_xor; a; y } ->
    write env y.(0) (reduce v_xor V0 (rv a))
  | Cell.Binary { op = And; a; b; y } ->
    set_vec y (Array.map2 v_and (rv a) (rv b))
  | Cell.Binary { op = Or; a; b; y } ->
    set_vec y (Array.map2 v_or (rv a) (rv b))
  | Cell.Binary { op = Xor; a; b; y } ->
    set_vec y (Array.map2 v_xor (rv a) (rv b))
  | Cell.Binary { op = Xnor; a; b; y } ->
    set_vec y (Array.map2 v_xnor (rv a) (rv b))
  | Cell.Binary { op = Eq; a; b; y } ->
    write env y.(0) (reduce v_and V1 (Array.map2 v_xnor (rv a) (rv b)))
  | Cell.Binary { op = Ne; a; b; y } ->
    write env y.(0) (reduce v_or V0 (Array.map2 v_xor (rv a) (rv b)))
  | Cell.Binary { op = Logic_and; a; b; y } ->
    write env y.(0) (v_and (bool_vec (rv a)) (bool_vec (rv b)))
  | Cell.Binary { op = Logic_or; a; b; y } ->
    write env y.(0) (v_or (bool_vec (rv a)) (bool_vec (rv b)))
  | Cell.Binary { op = Add; a; b; y } ->
    (* ripple with X-propagating carry *)
    let va = rv a and vb = rv b in
    let carry = ref V0 in
    Array.iteri
      (fun i _ ->
        let s = v_xor (v_xor va.(i) vb.(i)) !carry in
        let c =
          v_or (v_and va.(i) vb.(i)) (v_and !carry (v_xor va.(i) vb.(i)))
        in
        write env y.(i) s;
        carry := c)
      y
  | Cell.Binary { op = Sub; a; b; y } ->
    (* a - b = a + ~b + 1 *)
    let va = rv a and vb = Array.map v_not (rv b) in
    let carry = ref V1 in
    Array.iteri
      (fun i _ ->
        let s = v_xor (v_xor va.(i) vb.(i)) !carry in
        let c =
          v_or (v_and va.(i) vb.(i)) (v_and !carry (v_xor va.(i) vb.(i)))
        in
        write env y.(i) s;
        carry := c)
      y
  | Cell.Mux { a; b; s; y } ->
    let vs = read env s in
    let va = rv a and vb = rv b in
    Array.iteri (fun i _ -> write env y.(i) (v_mux ~a:va.(i) ~b:vb.(i) ~s:vs)) y
  | Cell.Pmux { a; b; s; y } ->
    (* priority: lowest selector index wins; X select before any 1 poisons *)
    let w = Bits.width a in
    let rec pick i =
      if i >= Bits.width s then `Default
      else
        match read env s.(i) with
        | V1 -> `Part i
        | Vx -> `Unknown
        | V0 -> pick (i + 1)
    in
    (match pick 0 with
    | `Part i ->
      let part = Bits.slice b ~off:(i * w) ~len:w in
      set_vec y (rv part)
    | `Default -> set_vec y (rv a)
    | `Unknown -> Array.iter (fun yb -> write env yb Vx) y)
  | Cell.Dff _ -> ()

(* Evaluate the cells [order] (must be a valid topological order of a
   sub-DAG) against [env]. *)
let eval_ordered (c : Circuit.t) (env : env) (order : int list) =
  List.iter (fun id -> eval_cell env (Circuit.cell c id)) order

(* Combinationally evaluate the whole circuit.  [inputs] assigns primary
   input bits; dff outputs default to X unless assigned via [state]. *)
let run (c : Circuit.t) ?(state = []) ~inputs () : env =
  let env = create_env () in
  List.iter (fun (b, v) -> write env b v) inputs;
  List.iter (fun (b, v) -> write env b v) state;
  eval_ordered c env (Topo.sort c);
  env

(* Read a multi-bit output as an integer if fully defined. *)
let read_int env (s : Bits.sigspec) =
  match vec_to_bool_opt (read_vec env s) with
  | None -> None
  | Some bools ->
    (* [bools] is LSB first *)
    Some
      (List.fold_left
         (fun acc b -> (acc * 2) + if b then 1 else 0)
         0 (List.rev bools))
