(** Muxtree detection and flattening for the restructuring pass
    (Algorithm 1's [OnlyEq] and [SingleCtrl] predicates).

    A rebuildable tree is a mux/pmux tree whose internal nodes are
    dedicated children and whose selects are eq-with-constant cells,
    logic_not cells (the all-zeros eq), or or-combinations thereof.
    Flattening yields priority rows: pattern cubes over the selector bits
    mapping to leaf data signals, plus a default. *)

open Netlist

type row = { cube : Add_bdd.Add.pbit array; value : Bits.sigspec }

type flat = {
  root : int;
  selector : Bits.sigspec;  (** the shared control bits *)
  rows : row list;  (** in priority order *)
  default : Bits.sigspec;
  tree_cells : int list;  (** the tree's mux/pmux cells, root included *)
  select_cells : int list;  (** the eq / logic_not / or select cells *)
  width : int;  (** data width *)
}

type deps = {
  circuit : Circuit.t;
  index : Index.t;
  readers : Rtl_opt.Opt_muxtree.readers;
}

val make_deps : Circuit.t -> deps

val flatten : ?single_ctrl:bool -> deps -> int -> flat option
(** Flatten the tree rooted at the given mux cell.  [single_ctrl]
    (default [true]) enforces the paper's SingleCtrl condition — all
    selector bits from one wire; [false] additionally accepts chains over
    several independent condition signals (this implementation's
    extension). *)

val flatten_root : ?single_ctrl:bool -> deps -> int -> flat option
(** Like {!flatten} but tolerates a vanished root (returns [None]). *)

val find_all : ?single_ctrl:bool -> Circuit.t -> flat list
(** Every rebuildable muxtree (roots = muxes that are not dedicated
    children themselves). *)
