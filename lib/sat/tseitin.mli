(** Tseitin encoding of circuit sub-DAGs into CNF. *)

open Netlist

type t = {
  solver : Solver.t;
  vars : int Bits.Bit_tbl.t;  (** wire bit -> SAT variable *)
  true_lit : Lit.t;  (** a variable asserted true, for constants *)
  mutable clause_log : Lit.t list list;
      (** every added clause, most recent first — the raw material for
          {!to_dimacs} query capture *)
}

val create : unit -> t
(** A fresh encoder with its own solver. *)

val lit_of_bit : t -> Bits.bit -> Lit.t
(** The SAT literal of a wire bit (allocated on first use); constants map
    to the dedicated true variable. *)

val encode_cell : t -> Cell.t -> unit
(** @raise Invalid_argument on sequential cells. *)

val encode_cells : t -> Circuit.t -> int list -> unit

val assume_lit : t -> Bits.bit -> bool -> Lit.t
(** Assumption literal asserting the bit's value. *)

val to_dimacs : t -> extra:Lit.t list list -> Dimacs.cnf
(** The encoded CNF with [extra] clauses appended.  Dumping a query passes
    the assumptions and the queried target polarity as unit clauses, making
    the instance self-contained for [smartly replay]. *)

type query_result = Forced of bool | Free | Undetermined

(** The last solver call of a query: which target polarity was asserted
    and what the solver answered.  A replay of the clauses plus that unit
    must reproduce [last_result]. *)
type solve_info = { last_target_lit : Lit.t; last_result : Solver.result }

val query_forced :
  ?budget:int -> t -> assumptions:Lit.t list -> target:Bits.bit -> query_result
(** Is the target bit forced under the assumptions?  Two incremental
    solver calls: SAT(target=1) and SAT(target=0). *)

val query_forced_info :
  ?budget:int ->
  t ->
  assumptions:Lit.t list ->
  target:Bits.bit ->
  query_result * solve_info
(** Like {!query_forced}, also exposing the final solve for capture. *)
