(* And-Inverter Graphs with structural hashing and constant folding.

   Literal encoding: lit = 2*node + complement.  Node 0 is the constant
   FALSE node, so lit 0 = false and lit 1 = true.  Nodes are either the
   constant, primary inputs, or AND2 nodes. *)

type lit = int

type node =
  | Const
  | Pi of int (* pi index *)
  | And of lit * lit

type t = {
  mutable nodes : node array;
  mutable num_nodes : int;
  strash : (int * int, int) Hashtbl.t;
  mutable pis : (string * int) list; (* name, node id; reversed *)
  mutable pos : (string * lit) list; (* reversed *)
}

let false_lit : lit = 0
let true_lit : lit = 1

let create () =
  {
    nodes = Array.make 64 Const;
    num_nodes = 1 (* node 0 = Const *);
    strash = Hashtbl.create 64;
    pis = [];
    pos = [];
  }

let node_of_lit (l : lit) = l lsr 1
let is_complemented (l : lit) = l land 1 = 1
let negate (l : lit) : lit = l lxor 1
let lit_of_node ?(complement = false) n : lit =
  (n * 2) + if complement then 1 else 0

let node t id = t.nodes.(id)

let add_node t n =
  if t.num_nodes >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) Const in
    Array.blit t.nodes 0 bigger 0 t.num_nodes;
    t.nodes <- bigger
  end;
  let id = t.num_nodes in
  t.nodes.(id) <- n;
  t.num_nodes <- id + 1;
  id

let new_pi t name : lit =
  let idx = List.length t.pis in
  let id = add_node t (Pi idx) in
  t.pis <- (name, id) :: t.pis;
  lit_of_node id

(* The literal of a named primary input, if present. *)
let pi_lit t name =
  List.assoc_opt name t.pis |> Option.map (fun id -> lit_of_node id)

let add_po t name (l : lit) = t.pos <- (name, l) :: t.pos

let pis t = List.rev t.pis
let pos t = List.rev t.pos

(* AND with constant folding and structural hashing. *)
let and_ t (a : lit) (b : lit) : lit =
  if a = false_lit || b = false_lit then false_lit
  else if a = true_lit then b
  else if b = true_lit then a
  else if a = b then a
  else if a = negate b then false_lit
  else begin
    let key = if a < b then a, b else b, a in
    match Hashtbl.find_opt t.strash key with
    | Some id -> lit_of_node id
    | None ->
      let id = add_node t (And (fst key, snd key)) in
      Hashtbl.replace t.strash key id;
      lit_of_node id
  end

let or_ t a b = negate (and_ t (negate a) (negate b))
let mux_ t ~s ~a ~b =
  (* y = s ? b : a *)
  or_ t (and_ t s b) (and_ t (negate s) a)
let xor_ t a b = or_ t (and_ t a (negate b)) (and_ t (negate a) b)
let xnor_ t a b = negate (xor_ t a b)

let and_list t = List.fold_left (and_ t) true_lit
let or_list t = List.fold_left (or_ t) false_lit
let xor_list t = List.fold_left (xor_ t) false_lit

(* --- area --- *)

(* Count AND nodes in the transitive fanin of the primary outputs.
   This matches counting cells after a dead-code sweep, the paper's
   "AIG area" (FFs are excluded upstream by the mapper). *)
let area t =
  let visited = Array.make t.num_nodes false in
  let count = ref 0 in
  let rec visit id =
    if not visited.(id) then begin
      visited.(id) <- true;
      match t.nodes.(id) with
      | And (a, b) ->
        incr count;
        visit (node_of_lit a);
        visit (node_of_lit b)
      | Const | Pi _ -> ()
    end
  in
  List.iter (fun (_, l) -> visit (node_of_lit l)) t.pos;
  !count

let num_ands t =
  let c = ref 0 in
  for i = 0 to t.num_nodes - 1 do
    match t.nodes.(i) with And _ -> incr c | Const | Pi _ -> ()
  done;
  !c

let num_pis t = List.length t.pis
let num_pos t = List.length t.pos

(* --- simulation (bit-parallel words) --- *)

(* Evaluate all nodes given one word per PI; returns per-node words. *)
let simulate t (pi_words : int array) : int array =
  let values = Array.make t.num_nodes 0 in
  for id = 0 to t.num_nodes - 1 do
    match t.nodes.(id) with
    | Const -> values.(id) <- 0
    | Pi idx -> values.(id) <- (if idx < Array.length pi_words then pi_words.(idx) else 0)
    | And (a, b) ->
      let va =
        let v = values.(node_of_lit a) in
        if is_complemented a then lnot v else v
      in
      let vb =
        let v = values.(node_of_lit b) in
        if is_complemented b then lnot v else v
      in
      values.(id) <- va land vb
  done;
  values

let lit_value values (l : lit) =
  let v = values.(node_of_lit l) in
  if is_complemented l then lnot v else v

(* --- CNF encoding --- *)

(* Encode the cone of the given literals into [solver]; returns a function
   mapping AIG literals to SAT literals. *)
let to_cnf t (solver : Cdcl.Solver.t) (roots : lit list) =
  let sat_var = Hashtbl.create 64 in
  let const_var =
    let v = Cdcl.Solver.new_var solver in
    Cdcl.Solver.add_clause solver [ Cdcl.Lit.of_var ~negated:true v ];
    v
  in
  Hashtbl.replace sat_var 0 const_var;
  let rec visit id =
    match Hashtbl.find_opt sat_var id with
    | Some v -> v
    | None -> (
      match t.nodes.(id) with
      | Const -> const_var
      | Pi _ ->
        let v = Cdcl.Solver.new_var solver in
        Hashtbl.replace sat_var id v;
        v
      | And (a, b) ->
        let va = visit (node_of_lit a) in
        let vb = visit (node_of_lit b) in
        let v = Cdcl.Solver.new_var solver in
        Hashtbl.replace sat_var id v;
        let la = Cdcl.Lit.of_var ~negated:(is_complemented a) va in
        let lb = Cdcl.Lit.of_var ~negated:(is_complemented b) vb in
        let ly = Cdcl.Lit.of_var v in
        Cdcl.Solver.add_clause solver [ Cdcl.Lit.negate ly; la ];
        Cdcl.Solver.add_clause solver [ Cdcl.Lit.negate ly; lb ];
        Cdcl.Solver.add_clause solver
          [ ly; Cdcl.Lit.negate la; Cdcl.Lit.negate lb ];
        v)
  in
  List.iter (fun l -> ignore (visit (node_of_lit l))) roots;
  fun (l : lit) ->
    let v = visit (node_of_lit l) in
    Cdcl.Lit.of_var ~negated:(is_complemented l) v
