(** The combined decision engine: is a signal forced under path facts?

    Resolution ladder, exactly the paper's: direct lookup (the Yosys
    identical-signal rule), inference rules, exhaustive bit-parallel
    simulation when the pruned sub-graph has few free inputs, an
    incremental SAT query otherwise, and a give-up threshold. *)

open Netlist

type verdict =
  | Forced of bool
  | Free  (** provably takes both values *)
  | Unreachable  (** the facts are contradictory: dead path *)
  | Unknown  (** thresholds exceeded or budget exhausted *)

type stats = {
  mutable rule_hits : int;
  mutable sim_queries : int;
  mutable sat_queries : int;
  mutable forgone : int;
  mutable subgraph_kept : int;
  mutable subgraph_dropped : int;
  mutable sat_conflicts : int;
      (** solver conflicts accumulated over all SAT queries *)
  mutable sat_decisions : int;
  mutable sat_propagations : int;
}

val fresh_stats : unit -> stats

val simulate_exhaustive :
  Circuit.t ->
  Subgraph.view ->
  Inference.known ->
  free_inputs:Bits.bit list ->
  target:Bits.bit ->
  verdict
(** Enumerate all assignments of the free sub-graph inputs; rows violating
    an internal known value are discarded. *)

val query_sat :
  ?stats:stats ->
  Circuit.t ->
  Subgraph.view ->
  Inference.known ->
  budget:int ->
  target:Bits.bit ->
  verdict
(** One Tseitin encoding + forced-value query.  When [stats] is given the
    solver's conflict/decision/propagation totals are accumulated into it
    (and into the global {!Obs.Metrics} registry). *)

val determine :
  Config.t ->
  stats ->
  Circuit.t ->
  Index.t ->
  Inference.known ->
  target:Bits.bit ->
  verdict
(** Build the bounded sub-graph from the cones of the target and the known
    signals, prune it (Theorem II.1), and run the ladder.  The caller's
    known map is never polluted with inferred values. *)
