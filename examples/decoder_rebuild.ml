(* Instruction-decoder restructuring: the workload the paper's introduction
   motivates.  A RISC-style opcode decoder written as a casez priority
   ladder elaborates into a long eq+mux chain; the restructuring pass
   rebuilds it as a small decision tree over the opcode bits.

     dune exec examples/decoder_rebuild.exe *)

open Netlist

let decoder =
  {|
module decoder(input [6:0] opcode, input [15:0] alu_r, input [15:0] mem_r,
               input [15:0] imm_r, input [15:0] br_r, output reg [15:0] wb);
  always @* begin
    // RV32 opcodes all end in 2'b11; decode the 5 significant bits
    case (opcode[6:2])
      5'b01100: wb = alu_r;   // OP
      5'b00100: wb = alu_r;   // OP-IMM
      5'b00000: wb = mem_r;   // LOAD
      5'b01000: wb = mem_r;   // STORE
      5'b01101: wb = imm_r;   // LUI
      5'b00101: wb = imm_r;   // AUIPC
      5'b11000: wb = br_r;    // BRANCH
      5'b11011: wb = br_r;    // JAL
      5'b11001: wb = br_r;    // JALR
      default:    wb = alu_r;
    endcase
  end
endmodule
|}

let () =
  let circuit = Hdl.Elaborate.elaborate_string ~style:`Chain decoder in
  let original = Circuit.copy circuit in
  let st0 = Stats.of_circuit circuit in
  Printf.printf "decoder as elaborated: %d muxes, %d eq gates, AIG area %d\n"
    st0.Stats.muxes st0.Stats.eqs
    (Aiger.Aigmap.aig_area circuit);

  (* what would Yosys do? *)
  let yosys_version = Circuit.copy circuit in
  ignore (Smartly.Driver.yosys yosys_version);
  Printf.printf "after the Yosys baseline:  AIG area %d (structure kept)\n"
    (Aiger.Aigmap.aig_area yosys_version);

  (* inspect the restructuring decision before committing to it *)
  ignore (Rtl_opt.Opt_expr.run circuit);
  (match Smartly.Muxtree.find_all circuit with
  | [ flat ] ->
    let index = Index.build circuit in
    let d = Smartly.Restructure.evaluate circuit index flat in
    Printf.printf
      "muxtree found: %d rows over %d opcode bits; greedy ADD tree: %d \
       muxes,\nheight %d, %d eq gates removable, est. saving %d AIG nodes\n"
      (List.length flat.Smartly.Muxtree.rows)
      (Bits.width flat.Smartly.Muxtree.selector)
      d.Smartly.Restructure.new_muxes d.Smartly.Restructure.height
      (List.length d.Smartly.Restructure.removable)
      d.Smartly.Restructure.saved_cost
  | trees -> Printf.printf "found %d muxtrees\n" (List.length trees));

  (* run the full flow and compare *)
  ignore (Smartly.Driver.smartly circuit);
  let st1 = Stats.of_circuit circuit in
  Printf.printf
    "after smaRTLy: %d muxes, %d eq gates, AIG area %d\n"
    st1.Stats.muxes st1.Stats.eqs
    (Aiger.Aigmap.aig_area circuit);
  Fmt.pr "equivalence check: %a@." Equiv.pp_verdict
    (Equiv.check original circuit)
