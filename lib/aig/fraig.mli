(** FRAIG-style SAT sweeping for equivalence checking.

    Both AIGs are imported into one graph with shared primary inputs
    (structural hashing merges identical cones), candidate-equivalent
    nodes are grouped by simulation signatures, and candidates are proven
    bottom-up with bounded incremental SAT queries whose results are
    learned as clauses — so output-level checks become trivial on
    structurally related circuits. *)

type verdict = Equivalent | Not_equivalent of string | Inconclusive

val check_aigs : ?rounds:int -> ?budget:int -> Aig.t -> Aig.t -> verdict
(** [rounds] initial random simulation patterns; [budget] conflicts per
    candidate query (the final output checks get 20x). *)
