(** Verilog writer: netlist -> the same subset the frontend parses.

    Combinational cells become continuous assignments (mux = ternary,
    pmux = priority ternary chain); dff cells become
    [always @(posedge clk)] blocks with an implicit [clk] port.
    Round-tripping through {!Parser} and {!Elaborate} yields an
    equivalent circuit. *)

exception Unsupported of string
(** Raised when a cell output does not cover a whole wire (can happen
    after port-preserving rewiring in optimization passes). *)

val write : Netlist.Circuit.t -> string
