// 4-bit ALU: a complete case with a default arm.  Lint-clean; used by
// `make ci` (smartly lint examples/*.v) and the README walkthrough.
module alu(input [1:0] op, input [3:0] a, input [3:0] b, output reg [3:0] y);
  always @* begin
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10: y = a & b;
      default: y = a | b;
    endcase
  end
endmodule
