(** The baseline optimization flow: the Yosys [opt] loop
    (opt_expr, opt_merge, opt_muxtree, opt_clean) to fixpoint. *)

type report = {
  iterations : int;
  expr_folded : int;
  muxtree_changes : int;
  cells_removed : int;
}

val pp_report : Format.formatter -> report -> unit

val baseline :
  ?after_pass:(string -> Netlist.Circuit.t -> unit) ->
  Netlist.Circuit.t ->
  report
(** [after_pass] is invoked after each sub-pass with its name
    (["opt_expr"], ["opt_merge"], ["opt_muxtree"], ["opt_clean"]) and the
    circuit as that pass left it; the invariant checker hooks in here. *)
