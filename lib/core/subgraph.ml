(* Sub-graph extraction for the SAT-based redundancy elimination.

   While traversing a muxtree, each encountered control port contributes the
   logic gates within distance [k] of it (transitive fanin, bounded depth).
   Sequential cells are excluded so the sub-graph remains a DAG; their
   outputs act as free sources.

   Before a query, the sub-graph is pruned using Theorem II.1: a signal S
   can affect a signal T only if their fanin cones intersect, i.e. they
   share a source.  Signals are grouped by union-find over shared sources,
   and only the gates in groups containing a known signal or the target are
   kept.  The paper reports this dismisses ~80% of the gates. *)

open Netlist

type t = {
  circuit : Circuit.t;
  index : Index.t;
  cells : (int, unit) Hashtbl.t; (* accumulated sub-graph cells *)
  depth_of : (int, int) Hashtbl.t; (* cell -> best (smallest) depth seen *)
}

let create (circuit : Circuit.t) (index : Index.t) =
  { circuit; index; cells = Hashtbl.create 64; depth_of = Hashtbl.create 64 }

(* Add the bounded fanin cone of [bit] (gates within distance [k]). *)
let add_cone t ~k (bit : Bits.bit) =
  let rec up depth b =
    if depth < k then
      match Index.driving_cell t.index b with
      | None -> ()
      | Some (id, _) -> (
        match Circuit.cell_opt t.circuit id with
        | None -> ()
        | Some cell ->
          if Cell.is_combinational cell then begin
            let seen_better =
              match Hashtbl.find_opt t.depth_of id with
              | Some d -> d <= depth
              | None -> false
            in
            if not seen_better then begin
              Hashtbl.replace t.depth_of id depth;
              Hashtbl.replace t.cells id ();
              List.iter (up (depth + 1)) (Cell.input_bits cell)
            end
          end)
  in
  up 0 bit

let cell_ids t = Hashtbl.fold (fun id () acc -> id :: acc) t.cells []

let size t = Hashtbl.length t.cells

(* Sources: bits read inside the sub-graph but not driven inside it. *)
let sources_of_cells (t : t) (ids : int list) : Bits.bit list =
  let inside = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace inside id ()) ids;
  let driven_inside = Bits.Bit_tbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun b -> Bits.Bit_tbl.replace driven_inside b ())
        (Cell.output_bits (Circuit.cell t.circuit id)))
    ids;
  let srcs = Bits.Bit_tbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun b ->
          if (not (Bits.is_const b)) && not (Bits.Bit_tbl.mem driven_inside b)
          then Bits.Bit_tbl.replace srcs b ())
        (Cell.input_bits (Circuit.cell t.circuit id)))
    ids;
  Bits.Bit_tbl.fold (fun b () acc -> b :: acc) srcs []

(* --- Theorem II.1 pruning --- *)

module Uf = struct
  (* union-find over bits *)
  type t = Bits.bit Bits.Bit_tbl.t

  let create () : t = Bits.Bit_tbl.create 64

  let rec find (uf : t) b =
    match Bits.Bit_tbl.find_opt uf b with
    | None -> b
    | Some p ->
      if Bits.bit_equal p b then b
      else begin
        let root = find uf p in
        Bits.Bit_tbl.replace uf b root;
        root
      end

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if not (Bits.bit_equal ra rb) then Bits.Bit_tbl.replace uf ra rb
end

(* A pruned, self-contained view ready for querying. *)
type view = {
  cells : int list; (* topologically ordered *)
  sources : Bits.bit list;
  kept : int; (* cells kept after pruning *)
  dropped : int; (* cells pruned away *)
}

(* Topologically order sub-graph cells (drivers first). *)
let topo_order t (ids : int list) : int list =
  let inside = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace inside id ()) ids;
  let state = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some _ -> ()
    | None ->
      Hashtbl.replace state id ();
      List.iter
        (fun b ->
          match Index.driving_cell t.index b with
          | Some (did, _) when Hashtbl.mem inside did -> visit did
          | Some _ | None -> ())
        (Cell.input_bits (Circuit.cell t.circuit id));
      order := id :: !order
  in
  List.iter visit ids;
  List.rev !order

let h_prune_ratio = Obs.Metrics.histogram "subgraph.prune_ratio"

(* Group signals by shared sources, then keep only cells whose output is in
   a group containing a relevant bit (a known signal or the target). *)
let prune t ~(relevant : Bits.bit list) : view =
  (* Naive undirected connectivity would relate signals through common
     *descendants*, which Theorem II.1 excludes.  Instead we group by shared
     sources: two signals are related iff their fanin cones intersect, and
     cones intersect iff they share a source.  Source sets are computed
     bottom-up; signals sharing a source are unioned. *)
  let ids = topo_order t (cell_ids t) in
  let uf = Uf.create () in
  let inside = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace inside id ()) ids;
  (* for every source bit, union it with every cell output reachable
     downstream inside the sub-graph *)
  let downstream_memo : Bits.Bit_set.t Bits.Bit_tbl.t = Bits.Bit_tbl.create 64 in
  (* sources of each cell output, bottom-up *)
  List.iter
    (fun id ->
      let cell = Circuit.cell t.circuit id in
      let in_sources =
        List.fold_left
          (fun acc b ->
            if Bits.is_const b then acc
            else
              match Index.driving_cell t.index b with
              | Some (did, _) when Hashtbl.mem inside did -> (
                match Bits.Bit_tbl.find_opt downstream_memo b with
                | Some s -> Bits.Bit_set.union acc s
                | None -> acc)
              | Some _ | None -> Bits.Bit_set.add b acc)
          Bits.Bit_set.empty (Cell.input_bits cell)
      in
      List.iter
        (fun o -> Bits.Bit_tbl.replace downstream_memo o in_sources)
        (Cell.output_bits cell);
      (* union: output with one representative source; all its sources with
         each other (they are all in the same group through this output) *)
      match Bits.Bit_set.choose_opt in_sources with
      | None -> ()
      | Some repr ->
        Bits.Bit_set.iter (fun s -> Uf.union uf repr s) in_sources;
        List.iter (fun o -> Uf.union uf repr o) (Cell.output_bits cell))
    ids;
  let relevant_roots =
    List.filter_map
      (fun b -> if Bits.is_const b then None else Some (Uf.find uf b))
      relevant
  in
  let is_relevant b =
    let r = Uf.find uf b in
    List.exists (Bits.bit_equal r) relevant_roots
  in
  let kept_cells =
    List.filter
      (fun id ->
        let cell = Circuit.cell t.circuit id in
        match Cell.output_bits cell with
        | o :: _ -> is_relevant o
        | [] -> false)
      ids
  in
  let dropped = List.length ids - List.length kept_cells in
  let total = List.length ids in
  if total > 0 then
    Obs.Metrics.observe h_prune_ratio (float_of_int dropped /. float_of_int total);
  {
    cells = kept_cells;
    sources = sources_of_cells t kept_cells;
    kept = List.length kept_cells;
    dropped;
  }

(* View without pruning (for the ablation). *)
let full_view t : view =
  let ids = topo_order t (cell_ids t) in
  {
    cells = ids;
    sources = sources_of_cells t ids;
    kept = List.length ids;
    dropped = 0;
  }
