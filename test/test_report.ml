(* Tests for the ASCII table renderer. *)

let check_bool = Alcotest.(check bool)

let test_render_alignment () =
  let out =
    Report.Table.render
      ~columns:
        [
          Report.Table.column ~align:Report.Table.Left "name";
          Report.Table.column "value";
        ]
      ~rows:[ [ "a"; "1" ]; [ "long-name"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (( <> ) "") in
  (* border, header, border, 2 rows, border *)
  check_bool "six lines" true (List.length lines = 6);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  check_bool "rectangular" true
    (List.for_all (( = ) (List.hd widths)) widths);
  let contains sub l =
    let n = String.length sub and m = String.length l in
    let rec go i = i + n <= m && (String.sub l i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "contains value" true (List.exists (contains "12345") lines)

let test_render_missing_cells () =
  (* short rows render with empty cells rather than raising *)
  let out =
    Report.Table.render
      ~columns:[ Report.Table.column "a"; Report.Table.column "b" ]
      ~rows:[ [ "only" ] ]
  in
  check_bool "rendered" true (String.length out > 0)

let test_pct () =
  check_bool "pct format" true (Report.Table.pct 12.345 = "12.35%" || Report.Table.pct 12.345 = "12.34%")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "missing cells" `Quick test_render_missing_cells;
          Alcotest.test_case "pct" `Quick test_pct;
        ] );
    ]
