(* Tests for the telemetry library: span tracing, metrics, JSON. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Json --- *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        "null", Null;
        "t", Bool true;
        "f", Bool false;
        "i", num_of_int 42;
        "neg", num_of_int (-7);
        "frac", Num 3.25;
        "s", Str "he said \"hi\"\n\ttab \\ slash";
        "xs", List [ num_of_int 1; Str "two"; Null ];
        "empty_obj", Obj [];
        "empty_list", List [];
      ]
  in
  (match parse (to_string v) with
  | Ok v' -> check_bool "compact roundtrip" true (v = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  match parse (to_string ~pretty:true v) with
  | Ok v' -> check_bool "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_locale_stable () =
  let open Obs.Json in
  (* integral floats print without a decimal point; fractional ones
     always use '.', never ',' *)
  check_string "integral" "42" (to_string (Num 42.0));
  check_string "fraction" "0.5" (to_string (Num 0.5));
  check_bool "no comma" true
    (not (String.contains (to_string (Num 1234.5678)) ','));
  (* non-finite numbers degrade to null rather than emitting 'nan' *)
  check_string "nan" "null" (to_string (Num Float.nan));
  check_string "inf" "null" (to_string (Num Float.infinity))

let test_json_parse_errors () =
  let open Obs.Json in
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    bad

let test_json_member () =
  let open Obs.Json in
  let v = Obj [ "a", num_of_int 1; "b", Str "x" ] in
  check_bool "hit" true (member "b" v = Some (Str "x"));
  check_bool "miss" true (member "c" v = None);
  check_bool "non-obj" true (member "a" (List []) = None)

(* --- Trace --- *)

let test_span_nesting () =
  let s = Obs.Trace.make_sink () in
  Obs.Trace.install s;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "inner1" (fun () -> ());
          Obs.Trace.with_span "inner2" (fun () ->
              Obs.Trace.with_span "leaf" (fun () -> ()))));
  let evs = Obs.Trace.events s in
  check_int "four spans" 4 (List.length evs);
  check_int "count matches" 4 (Obs.Trace.event_count s);
  let find name =
    List.find (fun (e : Obs.Trace.event) -> e.name = name) evs
  in
  check_int "outer depth" 0 (find "outer").Obs.Trace.depth;
  check_int "inner1 depth" 1 (find "inner1").Obs.Trace.depth;
  check_int "inner2 depth" 1 (find "inner2").Obs.Trace.depth;
  check_int "leaf depth" 2 (find "leaf").Obs.Trace.depth;
  (* events come back in start order: parents before children *)
  check_string "first is outer" "outer"
    (List.hd evs).Obs.Trace.name

let test_span_timing_monotone () =
  let s = Obs.Trace.make_sink () in
  Obs.Trace.install s;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
      Obs.Trace.with_span "parent" (fun () ->
          Obs.Trace.with_span "child" (fun () ->
              (* make sure the child takes measurable time *)
              let x = ref 0 in
              for i = 1 to 100_000 do
                x := !x + i
              done;
              ignore !x)));
  let evs = Obs.Trace.events s in
  let find name =
    List.find (fun (e : Obs.Trace.event) -> e.name = name) evs
  in
  let p = find "parent" and c = find "child" in
  check_bool "timestamps nonneg" true
    (p.Obs.Trace.ts_us >= 0.0 && c.Obs.Trace.ts_us >= 0.0);
  check_bool "durations nonneg" true
    (p.Obs.Trace.dur_us >= 0.0 && c.Obs.Trace.dur_us >= 0.0);
  check_bool "child starts after parent" true
    (c.Obs.Trace.ts_us >= p.Obs.Trace.ts_us);
  (* the parent interval contains the child interval (allow float slack) *)
  check_bool "child contained" true
    (c.Obs.Trace.ts_us +. c.Obs.Trace.dur_us
     <= p.Obs.Trace.ts_us +. p.Obs.Trace.dur_us +. 1.0);
  check_bool "parent >= child duration" true
    (p.Obs.Trace.dur_us +. 1.0 >= c.Obs.Trace.dur_us)

let test_span_exception_safety () =
  let s = Obs.Trace.make_sink () in
  Obs.Trace.install s;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
      (try
         Obs.Trace.with_span "raising" (fun () -> failwith "boom")
       with Failure _ -> ());
      (* depth unwound: a later span records at depth 0 *)
      Obs.Trace.with_span "after" (fun () -> ()));
  let evs = Obs.Trace.events s in
  check_int "both recorded" 2 (List.length evs);
  let find name =
    List.find (fun (e : Obs.Trace.event) -> e.name = name) evs
  in
  check_int "raising at depth 0" 0 (find "raising").Obs.Trace.depth;
  check_int "after at depth 0" 0 (find "after").Obs.Trace.depth

let test_no_sink_fast_path () =
  (* with no sink installed with_span is a direct call: nothing is
     recorded anywhere, and a previously uninstalled sink stays frozen *)
  let s = Obs.Trace.make_sink () in
  Obs.Trace.install s;
  Obs.Trace.with_span "while-installed" (fun () -> ());
  Obs.Trace.uninstall ();
  check_bool "disabled" true (not (Obs.Trace.enabled ()));
  let n = Obs.Trace.event_count s in
  let r = Obs.Trace.with_span "while-uninstalled" (fun () -> 17) in
  check_int "thunk result passes through" 17 r;
  check_int "no event recorded" n (Obs.Trace.event_count s);
  (* and the fast path does not allocate: measure minor words around a
     pre-allocated thunk *)
  let thunk () = () in
  Obs.Trace.with_span "warmup" thunk;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Obs.Trace.with_span "hot" thunk
  done;
  let dw = Gc.minor_words () -. w0 in
  (* allow a little slack for instrumentation noise; a per-call event
     record would cost thousands of words *)
  check_bool "fast path allocation-free" true (dw < 256.0)

let test_chrome_trace_json () =
  let s = Obs.Trace.make_sink () in
  Obs.Trace.install s;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
      Obs.Trace.with_span "a" (fun () ->
          Obs.Trace.with_span "b" (fun () -> ())));
  let j = Obs.Trace.to_chrome_json s in
  (* must parse back through our own strict parser *)
  (match Obs.Json.parse (Obs.Json.to_string ~pretty:true j) with
  | Ok j' -> check_bool "parses back" true (j = j')
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e);
  match Obs.Json.member "traceEvents" j with
  | Some (Obs.Json.List evs) ->
    check_int "two events" 2 (List.length evs);
    List.iter
      (fun ev ->
        let has k =
          match Obs.Json.member k ev with
          | Some _ -> true
          | None -> false
        in
        check_bool "name" true (has "name");
        check_bool "ph" true (Obs.Json.member "ph" ev = Some (Obs.Json.Str "X"));
        check_bool "ts" true (has "ts");
        check_bool "dur" true (has "dur");
        check_bool "pid" true (has "pid");
        check_bool "tid" true (has "tid"))
      evs
  | _ -> Alcotest.fail "missing traceEvents array"

(* --- Metrics --- *)

let test_counters () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.c1" in
  let c' = Obs.Metrics.counter "test.c1" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c' 4;
  check_int "shared by name" 5 (Obs.Metrics.value c);
  let listed = Obs.Metrics.counters () in
  check_bool "listed" true (List.mem_assoc "test.c1" listed);
  check_int "listed value" 5 (List.assoc "test.c1" listed);
  Obs.Metrics.reset ();
  (* handles stay valid across reset *)
  check_int "reset to zero" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  check_int "still usable" 1 (Obs.Metrics.value c)

let test_histograms () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.h1" in
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 3.0;
  Obs.Metrics.observe_int h 8;
  let st = Obs.Metrics.histogram_stats h in
  check_int "count" 3 st.Obs.Metrics.count;
  check_bool "sum" true (st.Obs.Metrics.sum = 12.0);
  check_bool "min" true (st.Obs.Metrics.min_v = 1.0);
  check_bool "max" true (st.Obs.Metrics.max_v = 8.0);
  check_bool "mean" true (st.Obs.Metrics.mean = 4.0);
  Obs.Metrics.reset ();
  let st0 = Obs.Metrics.histogram_stats h in
  check_int "empty count" 0 st0.Obs.Metrics.count;
  check_bool "empty mean" true (st0.Obs.Metrics.mean = 0.0)

let test_metrics_json () =
  Obs.Metrics.reset ();
  Obs.Metrics.add (Obs.Metrics.counter "test.c2") 3;
  Obs.Metrics.observe (Obs.Metrics.histogram "test.h2") 2.5;
  let j = Obs.Metrics.to_json () in
  (match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' -> check_bool "parses back" true (j = j')
  | Error e -> Alcotest.failf "metrics json: %s" e);
  (match Obs.Json.member "counters" j with
  | Some (Obs.Json.Obj kvs) ->
    check_bool "counter present" true
      (List.mem_assoc "test.c2" kvs)
  | _ -> Alcotest.fail "missing counters");
  match Obs.Json.member "histograms" j with
  | Some (Obs.Json.Obj kvs) ->
    check_bool "histogram present" true (List.mem_assoc "test.h2" kvs)
  | _ -> Alcotest.fail "missing histograms"


(* --- satellite: Json.parse edge cases --- *)

let test_json_escapes () =
  let open Obs.Json in
  (* standard escapes *)
  (match parse {|"a\"b\\c\/d\n\t\r\b\f"|} with
  | Ok (Str got) -> check_string "escapes" "a\"b\\c/d\n\t\r\b\012" got
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "escape parse failed: %s" e);
  (* \u escapes: ASCII range must decode; a lone surrogate or truncated
     sequence must be rejected, not crash *)
  (match parse {|"\u0041\u005a"|} with
  | Ok (Str got) -> check_string "unicode ascii" "AZ" got
  | Ok _ -> Alcotest.fail "not a string"
  | Error _ -> ());
  List.iter
    (fun bad ->
      match parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" bad)
    [ {|"\u00"|}; {|"\uZZZZ"|}; {|"\q"|} ]

let test_json_deep_nesting () =
  let open Obs.Json in
  (* a few hundred levels must roundtrip without stack overflow *)
  let depth = 400 in
  let rec build n = if n = 0 then num_of_int 7 else List [ build (n - 1) ] in
  let v = build depth in
  (match parse (to_string v) with
  | Ok v' -> check_bool "deep list roundtrip" true (v = v')
  | Error e -> Alcotest.failf "deep parse failed: %s" e);
  let rec build_obj n =
    if n = 0 then Null else Obj [ ("k", build_obj (n - 1)) ]
  in
  let o = build_obj depth in
  match parse (to_string o) with
  | Ok o' -> check_bool "deep obj roundtrip" true (o = o')
  | Error e -> Alcotest.failf "deep obj parse failed: %s" e

let test_json_truncated () =
  let open Obs.Json in
  (* every strict prefix of a valid document must fail to parse *)
  let doc = {|{"a":[1,2.5,true,null,"x\n"],"b":{"c":false}}|} in
  for len = 0 to String.length doc - 1 do
    match parse (String.sub doc 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted truncated prefix of length %d" len
  done

(* --- satellite: histogram percentiles --- *)

let test_histogram_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.pct" in
  for i = 1 to 100 do
    Obs.Metrics.observe_int h i
  done;
  let st = Obs.Metrics.histogram_stats h in
  check_bool "p50" true (st.Obs.Metrics.p50 = 50.0);
  check_bool "p90" true (st.Obs.Metrics.p90 = 90.0);
  check_bool "max" true (st.Obs.Metrics.max_v = 100.0);
  (* single observation: every percentile is that value *)
  Obs.Metrics.reset ();
  Obs.Metrics.observe h 7.0;
  let st1 = Obs.Metrics.histogram_stats h in
  check_bool "single p50" true (st1.Obs.Metrics.p50 = 7.0);
  check_bool "single p90" true (st1.Obs.Metrics.p90 = 7.0);
  (* more observations than the sample window: percentiles come from the
     retained window, still within the observed range *)
  Obs.Metrics.reset ();
  for i = 1 to 5000 do
    Obs.Metrics.observe_int h i
  done;
  let stw = Obs.Metrics.histogram_stats h in
  check_int "count over window" 5000 stw.Obs.Metrics.count;
  check_bool "windowed p50 in range" true
    (stw.Obs.Metrics.p50 >= 1.0 && stw.Obs.Metrics.p50 <= 5000.0);
  check_bool "p50 <= p90" true (stw.Obs.Metrics.p50 <= stw.Obs.Metrics.p90)

(* --- satellite: cross-run metric isolation (the bench contamination
   regression: a second measurement scoped by [reset] must not see the
   first one's observations) --- *)

let test_metrics_reset_isolation () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.case_counter" in
  let h = Obs.Metrics.histogram "test.case_hist" in
  (* case 1 *)
  Obs.Metrics.add c 100;
  Obs.Metrics.observe h 1000.0;
  (* case 2, scoped by reset as bench/main.ml does between cases *)
  Obs.Metrics.reset ();
  Obs.Metrics.add c 3;
  Obs.Metrics.observe h 2.0;
  check_int "counter sees only case 2" 3 (Obs.Metrics.value c);
  let st = Obs.Metrics.histogram_stats h in
  check_int "histogram sees only case 2" 1 st.Obs.Metrics.count;
  check_bool "no stale max" true (st.Obs.Metrics.max_v = 2.0);
  check_bool "no stale p90" true (st.Obs.Metrics.p90 = 2.0)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "locale stable" `Quick test_json_locale_stable;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "escape sequences" `Quick test_json_escapes;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "truncated input" `Quick test_json_truncated;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "timing monotone" `Quick test_span_timing_monotone;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "no-sink fast path" `Quick test_no_sink_fast_path;
          Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "json export" `Quick test_metrics_json;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "reset isolation" `Quick
            test_metrics_reset_isolation;
        ] );
    ]
