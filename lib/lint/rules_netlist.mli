(** Netlist-level lint rules (NL001..NL009).

    [of_validate] bridges {!Netlist.Validate} well-formedness issues into
    error diagnostics (NL005..NL009); [structural] adds the heuristic
    rules over well-formed circuits (NL001..NL004).  [check] runs both. *)

open Netlist

val of_validate : Validate.issue list -> Diag.t list

val structural : Circuit.t -> Diag.t list

val check : Circuit.t -> Diag.t list
(** [of_validate (Validate.check c) @ structural c], sorted. *)
