(* Insert flip-flop stages behind a fraction of combinational cells.

   Realistic designs are sequential; the optimizers treat dff boundaries
   as cut points and the AIG metric excludes the registers themselves, so
   staging changes nothing about the passes except making the sub-graphs
   and cones realistic (bounded by register boundaries). *)

open Netlist

let insert_registers (c : Circuit.t) ~seed ~percent =
  let rng = Rng.create ~seed in
  let stageable cell =
    (* only stage datapath cells: registering the middle of a muxtree or a
       select cone would break structures real RTL keeps combinational *)
    match cell with
    | Cell.Binary { op = Cell.And | Cell.Or | Cell.Xor | Cell.Xnor | Cell.Add | Cell.Sub; _ }
    | Cell.Unary { op = Cell.Not; _ } -> true
    | Cell.Binary { op = Cell.Eq | Cell.Ne | Cell.Logic_and | Cell.Logic_or; _ }
    | Cell.Unary
        { op = Cell.Logic_not | Cell.Reduce_and | Cell.Reduce_or
               | Cell.Reduce_xor | Cell.Reduce_bool; _ }
    | Cell.Mux _ | Cell.Pmux _ | Cell.Dff _ -> false
  in
  let candidates =
    List.filter
      (fun id ->
        let cell = Circuit.cell c id in
        stageable cell
        && not
             (Array.exists
                (fun b -> Rewire.is_port_bit c b)
                (Cell.output cell)))
      (Circuit.cell_ids c)
  in
  List.iter
    (fun id ->
      if Rng.chance rng percent then begin
        let cell = Circuit.cell c id in
        let y = Cell.output cell in
        (* repoint the cell at a fresh wire and register it into the old
           output, so every reader now sees the dff's q *)
        let staged = Circuit.fresh_sig c ~width:(Bits.width y) in
        let repointed =
          match cell with
          | Cell.Unary u -> Cell.Unary { u with y = staged }
          | Cell.Binary b -> Cell.Binary { b with y = staged }
          | Cell.Mux m -> Cell.Mux { m with y = staged }
          | Cell.Pmux p -> Cell.Pmux { p with y = staged }
          | Cell.Dff _ -> cell
        in
        Circuit.replace_cell c id repointed;
        ignore (Circuit.add_cell c (Cell.Dff { d = staged; q = y }))
      end)
    candidates
