(* Constant folding and wire-level simplification, a la Yosys `opt_expr`.

   - cells whose outputs are fully determined by constant inputs are
     replaced by constants;
   - transparent cells (or with 0, and with all-ones, xor with 0, mux with
     constant select or equal branches) are removed by rewiring readers;
   - $eq/$ne of syntactically identical operands fold to constants.

   Cells driving output ports are kept as buffers (free after aigmap). *)

open Netlist

let output_is_port (c : Circuit.t) (cell : Cell.t) =
  Array.exists (Rewire.is_port_bit c) (Cell.output cell)

(* Try to const-evaluate the cell with a 3-valued pass (non-constant inputs
   read as X).  Returns the constant output sigspec if fully determined. *)
let try_const_eval (cell : Cell.t) : Bits.sigspec option =
  let env = Rtl_sim.Eval.create_env () in
  Rtl_sim.Eval.eval_cell env cell;
  let y = Cell.output cell in
  let out =
    Array.map
      (fun b ->
        match Rtl_sim.Eval.read env b with
        | Rtl_sim.Value.V0 -> Some Bits.C0
        | Rtl_sim.Value.V1 -> Some Bits.C1
        | Rtl_sim.Value.Vx -> None)
      y
  in
  if Array.for_all Option.is_some out then
    Some (Array.map Option.get out)
  else None

(* A transparent replacement: the cell's output equals this input signal. *)
let try_passthrough (cell : Cell.t) : Bits.sigspec option =
  let all_const v s = Array.for_all (Bits.bit_equal v) s in
  match cell with
  | Cell.Binary { op = Cell.Or; a; b; _ } ->
    if all_const Bits.C0 b then Some a
    else if all_const Bits.C0 a then Some b
    else None
  | Cell.Binary { op = Cell.And; a; b; _ } ->
    if all_const Bits.C1 b then Some a
    else if all_const Bits.C1 a then Some b
    else None
  | Cell.Binary { op = Cell.Xor; a; b; _ } ->
    if all_const Bits.C0 b then Some a
    else if all_const Bits.C0 a then Some b
    else None
  | Cell.Binary { op = Cell.Add; a; b; _ } ->
    if all_const Bits.C0 b then Some a
    else if all_const Bits.C0 a then Some b
    else None
  | Cell.Binary { op = Cell.Sub; a; b; _ } ->
    if all_const Bits.C0 b then Some a else None
  | Cell.Mux { a; b; s; _ } -> (
    match s with
    | Bits.C0 -> Some a
    | Bits.C1 -> Some b
    | Bits.Cx | Bits.Of_wire _ -> if Bits.equal a b then Some a else None)
  | Cell.Pmux { a; b; s; _ } ->
    (* all selects constant zero: default; a constant-one select with all
       earlier selects zero: that part *)
    let w = Bits.width a in
    let rec scan i =
      if i >= Bits.width s then Some a
      else
        match s.(i) with
        | Bits.C0 -> scan (i + 1)
        | Bits.C1 -> Some (Bits.slice b ~off:(i * w) ~len:w)
        | Bits.Cx | Bits.Of_wire _ -> None
    in
    scan 0
  | Cell.Binary
      { op = Cell.Eq | Cell.Ne | Cell.Xnor | Cell.Logic_and | Cell.Logic_or; _ }
  | Cell.Unary _ | Cell.Dff _ -> None

(* Structural identities: eq/ne of identical signals. *)
let try_identity (cell : Cell.t) : Bits.sigspec option =
  match cell with
  | Cell.Binary { op = Cell.Eq; a; b; _ }
    when Bits.equal a b && not (Array.exists (Bits.bit_equal Bits.Cx) a) ->
    Some [| Bits.C1 |]
  | Cell.Binary { op = Cell.Ne; a; b; _ }
    when Bits.equal a b && not (Array.exists (Bits.bit_equal Bits.Cx) a) ->
    Some [| Bits.C0 |]
  | Cell.Binary _ | Cell.Unary _ | Cell.Mux _ | Cell.Pmux _ | Cell.Dff _ ->
    None

let m_cells_removed = Obs.Metrics.counter "flow.cells_removed"

let simplify_cell (c : Circuit.t) id (cell : Cell.t) : bool =
  let y = Cell.output cell in
  let is_port = output_is_port c cell in
  let replace_with ~reason to_ =
    if is_port then begin
      (* ports cannot be renamed: normalize to a buffer driving the port *)
      let normalized =
        Cell.Binary
          { op = Cell.Or; a = to_; b = Bits.all_zero ~width:(Bits.width y); y }
      in
      if cell = normalized then false
      else begin
        (* readers other than the port itself can use [to_] directly *)
        Circuit.replace_cell c id normalized;
        true
      end
    end
    else begin
      Rewire.replace_sig c ~from_:y ~to_;
      Circuit.remove_cell c id;
      Obs.Metrics.incr m_cells_removed;
      Obs.Provenance.emit ~kind:Obs.Provenance.Cell_removed ~cell:id
        ~pass:"opt_expr" ~mechanism:(Obs.Provenance.Rule reason)
        ~area_delta:(-Stats.approx_cell_area cell) ();
      true
    end
  in
  match try_const_eval cell with
  | Some consts when Cell.is_combinational cell ->
    replace_with ~reason:"const_fold" consts
  | Some _ | None -> (
    match try_identity cell with
    | Some v -> replace_with ~reason:"identity" v
    | None -> (
      match try_passthrough cell with
      | Some v -> replace_with ~reason:"passthrough" v
      | None -> false))

let m_folded = Obs.Metrics.counter "opt_expr.folded"

(* Run to fixpoint; returns the number of removed cells. *)
let run (c : Circuit.t) : int =
  Obs.Trace.with_span "opt_expr.run" @@ fun () ->
  let total = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun id ->
        match Circuit.cell_opt c id with
        | Some cell ->
          if simplify_cell c id cell then begin
            incr total;
            progress := true
          end
        | None -> ())
      (Circuit.cell_ids c)
  done;
  Obs.Metrics.add m_folded !total;
  !total
