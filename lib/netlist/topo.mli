(** Topological ordering of combinational cells.  Dff cells cut paths:
    their outputs behave like primary inputs. *)

exception Combinational_cycle of int list
(** Exactly the cell ids on one combinational cycle, with no lead-in:
    each cell in the list reads an output of the next, and the last reads
    an output of the first. *)

val sort : Circuit.t -> int list
(** Combinational cells in dependency order (drivers first), then the
    sequential cells.  @raise Combinational_cycle on a loop. *)

val is_acyclic : Circuit.t -> bool

val depths : Circuit.t -> (int, int) Hashtbl.t
(** Per-cell logic depth (1 + max over driver depths). *)

val logic_depth : Circuit.t -> int
(** Maximum combinational depth of the circuit. *)
