// Gray-code counter: a sequential always block plus a continuous assign.
// The clock never appears in the netlist (single implicit clock domain),
// which is why the NL004 floating-input rule exempts clock-named inputs.
module gray_counter(input clk, input rst, output [3:0] gray);
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) count <= 4'b0000;
    else count <= count + 4'b0001;
  end
  assign gray = count ^ {1'b0, count[3:1]};
endmodule
