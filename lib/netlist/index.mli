(** Structural indices: which cell drives each bit, which cells read it.
    Rebuild after mutating passes. *)

type driver =
  | Driven_by of int * int  (** cell id, offset in its output sigspec *)
  | Primary_input
  | Undriven

type t

val build : Circuit.t -> t

val driver : t -> Bits.bit -> driver

val driving_cell : t -> Bits.bit -> (int * int) option
(** [(cell id, output offset)] when a cell drives the bit. *)

val readers : t -> Bits.bit -> int list
(** Cells reading the bit (any input port). *)

val fanout_cells : t -> Bits.sigspec -> int list
(** Distinct cells reading any bit of the sigspec. *)
