(* Textual dump of a circuit, loosely following the RTLIL look. *)

let pp_wire (c : Circuit.t) ppf (w : Circuit.wire) =
  ignore c;
  Fmt.pf ppf "wire width %d %s (id %d)" w.Circuit.width w.Circuit.wire_name
    w.Circuit.wire_id

let pp ppf (c : Circuit.t) =
  Fmt.pf ppf "module %s@." c.Circuit.name;
  List.iter
    (fun w -> Fmt.pf ppf "  input  %a@." (pp_wire c) w)
    (Circuit.inputs c);
  List.iter
    (fun w -> Fmt.pf ppf "  output %a@." (pp_wire c) w)
    (Circuit.outputs c);
  List.iter
    (fun id -> Fmt.pf ppf "  cell %d: %a@." id Cell.pp (Circuit.cell c id))
    (Circuit.cell_ids c);
  Fmt.pf ppf "end@."

let to_string c = Fmt.str "%a" pp c

let print c = print_string (to_string c)
