(** Hash-consed Algebraic Decision Diagrams.

    ADDs generalize BDDs from boolean to arbitrary integer terminals.
    Nodes are ordered (smaller variable index on top) and reduced: equal
    children collapse, structurally equal nodes are shared, so physical
    equality is semantic equality within one manager. *)

type t = private { id : int; node : node }

and node = Leaf of int | Node of { var : int; lo : t; hi : t }

type manager

val manager : unit -> manager

val leaf : manager -> int -> t
val mk : manager -> var:int -> lo:t -> hi:t -> t

val is_leaf : t -> bool

val leaf_value : t -> int
(** @raise Invalid_argument on internal nodes. *)

val eval : t -> (int -> bool) -> int
(** Evaluate under a variable assignment. *)

val count_nodes : t -> int
(** Internal (decision) nodes, shared nodes counted once. *)

val terminals : t -> int list
(** Distinct reachable terminal values, sorted. *)

val apply : manager -> tag:int -> (int -> int -> int) -> t -> t -> t
(** Combine two ADDs pointwise; [tag] keys the memo table and must be
    unique per function. *)

val map : manager -> (int -> int) -> t -> t

val restrict : manager -> var:int -> value:bool -> t -> t

(** {1 BDD view: terminals 0/1} *)

val bdd_false : manager -> t
val bdd_true : manager -> t
val bdd_var : manager -> int -> t
val bdd_and : manager -> t -> t -> t
val bdd_or : manager -> t -> t -> t
val bdd_xor : manager -> t -> t -> t
val bdd_not : manager -> t -> t

val ite : manager -> t -> then_:t -> else_:t -> t
(** If-then-else with a BDD condition over ADD branches. *)

(** {1 Priority rows (case statements)} *)

type pbit = P0 | P1 | Pz  (** pattern bit: 0, 1, wildcard *)

val of_rows :
  manager -> num_vars:int -> (pbit array * int) list -> default:int -> t
(** Canonical-order ADD of a priority pattern list: the first matching row
    wins; [default] when none matches.  Variable [i] is cube index [i]. *)

val pp : Format.formatter -> t -> unit
