(* The Yosys `opt_muxtree` baseline.

   Muxtrees are traversed from their roots; along each branch the values of
   the control bits taken so far are known.  Two rules are applied, exactly
   the ones Yosys implements (paper Figs. 1 and 2):

   1. a descendant mux whose control bit is already known is bypassed
      (its selected input replaces its output), and
   2. data-port bits equal to a known control bit are replaced by the known
      constant.

   Only *identical* control bits are recognized — no logic inference.  A
   descendant mux is part of the tree (and thus eliminable) only when every
   read of its output comes from a single data-port side of a single mux,
   so rewriting it cannot affect other paths. *)

open Netlist

type side = Side_a | Side_b of int (* pmux part index; Mux's b = part 0 *)

(* (mux id, side) pairs reading each bit, plus non-mux/port readers. *)
type readers = {
  mux_reads : (int * side) list Bits.Bit_tbl.t;
  other_read : unit Bits.Bit_tbl.t; (* read by non-mux cell / select port *)
}

let collect_readers (c : Circuit.t) : readers =
  let mux_reads = Bits.Bit_tbl.create 64 in
  let other_read = Bits.Bit_tbl.create 64 in
  let mark_other b =
    if not (Bits.is_const b) then Bits.Bit_tbl.replace other_read b ()
  in
  let mark_mux b entry =
    if not (Bits.is_const b) then
      Bits.Bit_tbl.replace mux_reads b
        (entry
        ::
        (match Bits.Bit_tbl.find_opt mux_reads b with
        | Some l -> l
        | None -> []))
  in
  Circuit.iter_cells
    (fun id cell ->
      match cell with
      | Cell.Mux { a; b; s; _ } ->
        Array.iter (fun bit -> mark_mux bit (id, Side_a)) a;
        Array.iter (fun bit -> mark_mux bit (id, Side_b 0)) b;
        mark_other s
      | Cell.Pmux { a; b; s; _ } ->
        let w = Bits.width a in
        Array.iter (fun bit -> mark_mux bit (id, Side_a)) a;
        Array.iteri
          (fun i bit -> mark_mux bit (id, Side_b (i / w))) b;
        Array.iter mark_other s
      | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ ->
        List.iter mark_other (Cell.input_bits cell))
    c;
  (* output ports count as other readers *)
  List.iter mark_other (Circuit.output_bits c);
  { mux_reads; other_read }

(* A mux is a dedicated child of (parent, side) if every read of every
   output bit is from that one location. *)
let dedicated_location (r : readers) (cell : Cell.t) : (int * side) option =
  let y = Cell.output cell in
  let locations = ref [] in
  let ok =
    Array.for_all
      (fun b ->
        if Bits.Bit_tbl.mem r.other_read b then false
        else begin
          (match Bits.Bit_tbl.find_opt r.mux_reads b with
          | Some l -> locations := l @ !locations
          | None -> ());
          true
        end)
      y
  in
  if not ok then None
  else
    match List.sort_uniq compare !locations with
    | [ loc ] -> Some loc
    | [] | _ :: _ -> None

type ctx = {
  c : Circuit.t;
  index : Index.t;
  readers : readers;
  mutable eliminated : int; (* muxes bypassed *)
  mutable const_bits : int; (* data bits replaced by constants *)
}

let is_mux = function
  | Cell.Mux _ | Cell.Pmux _ -> true
  | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ -> false

(* Resolve a bit under the known control values: constant substitution plus
   bypassing dedicated child muxes with known selects. *)
let rec resolve ctx known ~loc (bit : Bits.bit) : Bits.bit =
  match Bits.Bit_tbl.find_opt known bit with
  | Some true -> Bits.C1
  | Some false -> Bits.C0
  | None -> (
    match Index.driving_cell ctx.index bit with
    | None -> bit
    | Some (child_id, off) -> (
      match Circuit.cell_opt ctx.c child_id with
      | None -> bit
      | Some child when not (is_mux child) -> bit
      | Some child -> (
        match dedicated_location ctx.readers child with
        | Some l when l = loc -> (
          match child with
          | Cell.Mux { a; b; s; _ } -> (
            let sv =
              match Bits.Bit_tbl.find_opt known s with
              | Some v -> Some v
              | None -> (
                match s with
                | Bits.C0 -> Some false
                | Bits.C1 -> Some true
                | Bits.Cx | Bits.Of_wire _ -> None)
            in
            match sv with
            | Some v ->
              ctx.eliminated <- ctx.eliminated + 1;
              Obs.Provenance.emit ~kind:Obs.Provenance.Mux_bypassed
                ~cell:child_id ~pass:"opt_muxtree"
                ~mechanism:(Obs.Provenance.Rule "identical_signal") ();
              resolve ctx known ~loc (if v then b.(off) else a.(off))
            | None -> bit)
          | Cell.Pmux _ | Cell.Unary _ | Cell.Binary _ | Cell.Dff _ -> bit)
        | Some _ | None -> bit)))

(* Substitute one data-port sigspec under [known]. *)
let resolve_port ctx known ~loc (port : Bits.sigspec) : Bits.sigspec * bool =
  let changed = ref false in
  let out =
    Array.map
      (fun bit ->
        let nb = resolve ctx known ~loc bit in
        if not (Bits.bit_equal nb bit) then begin
          changed := true;
          if Bits.is_const nb then begin
            ctx.const_bits <- ctx.const_bits + 1;
            Obs.Provenance.emit ~kind:Obs.Provenance.Const_resolved
              ~cell:(fst loc) ~pass:"opt_muxtree"
              ~mechanism:(Obs.Provenance.Rule "identical_signal") ~bits:1 ()
          end
        end;
        nb)
      port
  in
  out, !changed

let with_fact known (bit : Bits.bit) (v : bool) =
  let known' = Bits.Bit_tbl.copy known in
  (match bit with
  | Bits.Of_wire _ -> Bits.Bit_tbl.replace known' bit v
  | Bits.C0 | Bits.C1 | Bits.Cx -> ());
  known'

(* Children of a port that we should recurse into. *)
let port_children ctx ~loc (port : Bits.sigspec) : int list =
  Array.to_list port
  |> List.filter_map (fun bit ->
         match Index.driving_cell ctx.index bit with
         | Some (id, _) -> (
           match Circuit.cell_opt ctx.c id with
           | Some child when is_mux child -> (
             match dedicated_location ctx.readers child with
             | Some l when l = loc -> Some id
             | Some _ | None -> None)
           | Some _ | None -> None)
         | None -> None)
  |> List.sort_uniq compare

let rec visit ctx visited known (id : int) =
  if not (Hashtbl.mem visited id) then begin
    Hashtbl.replace visited id ();
    match Circuit.cell_opt ctx.c id with
    | None -> ()
    | Some (Cell.Mux { a; b; s; y }) ->
      let known_a = with_fact known s false in
      let known_b = with_fact known s true in
      let a', ca = resolve_port ctx known_a ~loc:(id, Side_a) a in
      let b', cb = resolve_port ctx known_b ~loc:(id, Side_b 0) b in
      if ca || cb then
        Circuit.replace_cell ctx.c id (Cell.Mux { a = a'; b = b'; s; y });
      List.iter
        (fun cid -> visit ctx visited known_a cid)
        (port_children ctx ~loc:(id, Side_a) a');
      List.iter
        (fun cid -> visit ctx visited known_b cid)
        (port_children ctx ~loc:(id, Side_b 0) b')
    | Some (Cell.Pmux { a; b; s; y }) ->
      let w = Bits.width a in
      let n = Bits.width s in
      (* default branch: every select is 0 *)
      let known_def = ref (Bits.Bit_tbl.copy known) in
      Array.iter (fun sb -> known_def := with_fact !known_def sb false) s;
      let a', ca = resolve_port ctx !known_def ~loc:(id, Side_a) a in
      (* part branches: s_i = 1, s_j = 0 for j < i (priority) *)
      let b' = Array.copy b in
      let changed_b = ref false in
      for i = 0 to n - 1 do
        let kp = ref (Bits.Bit_tbl.copy known) in
        for j = 0 to i - 1 do
          kp := with_fact !kp s.(j) false
        done;
        kp := with_fact !kp s.(i) true;
        let part = Bits.slice b ~off:(i * w) ~len:w in
        let part', cp = resolve_port ctx !kp ~loc:(id, Side_b i) part in
        if cp then begin
          changed_b := true;
          Array.blit part' 0 b' (i * w) w
        end
      done;
      if ca || !changed_b then
        Circuit.replace_cell ctx.c id (Cell.Pmux { a = a'; b = b'; s; y });
      List.iter
        (fun cid -> visit ctx visited !known_def cid)
        (port_children ctx ~loc:(id, Side_a) a');
      for i = 0 to n - 1 do
        let kp = ref (Bits.Bit_tbl.copy known) in
        for j = 0 to i - 1 do
          kp := with_fact !kp s.(j) false
        done;
        kp := with_fact !kp s.(i) true;
        let part = Bits.slice b' ~off:(i * w) ~len:w in
        List.iter
          (fun cid -> visit ctx visited !kp cid)
          (port_children ctx ~loc:(id, Side_b i) part)
      done
    | Some (Cell.Unary _ | Cell.Binary _ | Cell.Dff _) -> ()
  end

(* One full traversal; returns (eliminated muxes, constant-folded bits). *)
let run_once (c : Circuit.t) : int * int =
  let ctx =
    {
      c;
      index = Index.build c;
      readers = collect_readers c;
      eliminated = 0;
      const_bits = 0;
    }
  in
  let visited = Hashtbl.create 64 in
  (* roots: muxes that are not dedicated children of another mux *)
  let roots =
    List.filter
      (fun id ->
        let cell = Circuit.cell c id in
        is_mux cell && dedicated_location ctx.readers cell = None)
      (Circuit.cell_ids c)
  in
  let empty_known () = Bits.Bit_tbl.create 8 in
  List.iter (fun id -> visit ctx visited (empty_known ()) id) roots;
  (* dedicated children never reached from a root (e.g. cyclic weirdness)
     are left untouched *)
  ctx.eliminated, ctx.const_bits

(* Iterate to fixpoint (with expression folding in between, the caller's
   flow takes care of interleaving opt_expr / opt_clean). *)
let m_changes = Obs.Metrics.counter "opt_muxtree.changes"

let run (c : Circuit.t) : int =
  Obs.Trace.with_span "opt_muxtree.run" @@ fun () ->
  let total = ref 0 in
  let rec fix iter =
    if iter < 16 then begin
      let elim, consts = run_once c in
      total := !total + elim + consts;
      if elim + consts > 0 then fix (iter + 1)
    end
  in
  fix 0;
  Obs.Metrics.add m_changes !total;
  !total
