(** Cross-query verdict memoization for the decision engine.

    Sim/SAT verdicts are cached under a canonical structural key of
    (pruned sub-graph, known assignments, target) — alpha-equivalent over
    wire ids, so structurally identical queries from different muxtrees
    (or stamped-out copies of the same logic) hit the same entry.  The
    full key is stored, so hash collisions can never return a wrong
    verdict; [Unknown] verdicts are never cached (they depend on the
    conflict budget, not only on the query).  Process-global like the
    metrics registry, with hit/miss/eviction counters ([memo.hits],
    [memo.misses], [memo.evictions]) and bounded FIFO eviction. *)

open Netlist

(** A cacheable verdict ({!Engine.verdict} minus [Unknown]). *)
type verdict = Forced of bool | Free | Unreachable

val key :
  Circuit.t ->
  Subgraph.view ->
  bool Bits.Bit_tbl.t ->
  target:Bits.bit ->
  string
(** Canonical key: a deterministic serialization of the target's fanin
    cone within the view followed by the known cones in a
    structure-derived order, with wire bits numbered by first use.
    Knowns with no connection to the view are excluded. *)

val find : string -> verdict option
(** Bumps the hit/miss counters. *)

val store : string -> verdict -> unit
(** Insert (first writer wins); evicts FIFO beyond capacity. *)

val reset : ?capacity:int -> unit -> unit
(** Clear the store and set capacity (default 65536; 0 disables
    storing). *)

val size : unit -> int

val to_json : unit -> Obs.Json.t
(** [{"hits", "misses", "evictions", "entries", "capacity",
    "hit_rate"}] — the [--json] report's [memo] section. *)
